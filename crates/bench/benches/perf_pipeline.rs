//! Machine-readable perf tracker: runs the flagship pipelines (E1/E2 single
//! message, the adaptive Theorem 1.3 multi-message scenarios) through the
//! `Scenario` facade, the million-node idle-round microbench and — since
//! schema 7 — the parallel corridor seed sweep (serial vs the work-stealing
//! `sweep::SweepPool`, with the bit-identity of the shard-merged matrix
//! re-proven in the measurement itself), then writes `BENCH_pipeline.json`
//! at the repo root — rounds, wall-clock, engine skip counters and the
//! declarative scenario descriptor of every entry — so the perf trajectory
//! is tracked from PR 3 onward. CI runs this in release mode as a smoke job
//! and `scripts/check_bench.py` validates the schema, the scenario
//! descriptors and the pinned round counts.
//!
//! ```sh
//! cargo bench --bench perf_pipeline            # writes BENCH_pipeline.json
//! BENCH_OUT=/tmp/p.json cargo bench --bench perf_pipeline
//! ```

use broadcast::decay::{DecayBroadcast, DecayMsg};
use broadcast::{BatchMode, Params, Scenario, TopologySpec, Workload};
use radio_sim::graph::generators;
use radio_sim::trace::RunStats;
use radio_sim::{CollisionMode, DenseWrap, FaultPlan, Simulator, Topology};
use rlnc::gf2::BitVec;
use std::fmt::Write as _;
use std::time::Instant;
use sweep::{SweepPool, SweepProduct};

/// One measured pipeline run.
struct Entry {
    name: &'static str,
    topology: String,
    workload: &'static str,
    seed: u64,
    faults: String,
    rounds: u64,
    cap: u64,
    wall_ms: f64,
    stats: RunStats,
    /// Whether the run streamed its topology (no CSR ever materialized).
    streamed: bool,
    /// High-water resident bytes: topology representation + node state.
    peak_state_bytes: usize,
    /// CSR bytes a materialized build of the same topology would pin:
    /// measured for materialized entries, the analytic expectation for
    /// streamed ones. `check_bench.py` gates streamed entries on
    /// `peak_state_bytes` staying well below this.
    materialized_topology_bytes: usize,
}

fn payloads(k: usize) -> Vec<BitVec> {
    (0..k as u64).map(|i| BitVec::from_u64(0xBEE0 + i, 32)).collect()
}

/// Expected CSR bytes of a materialized build of `spec`: exact edge counts
/// for deterministic families, the distributional expectation for hashed
/// ones ((n+1) offsets plus both directions of every adjacency entry, 4 B
/// each). Streamed entries are gated on `peak_state_bytes` staying well
/// below this — a streamed run that silently materialized would blow the
/// ratio.
fn csr_estimate(spec: &TopologySpec) -> usize {
    let of = |n: usize, m: f64| (n + 1) * 4 + (2.0 * m * 4.0) as usize;
    match spec {
        TopologySpec::StreamedGrid { w, h } => of(w * h, (2 * w * h - w - h) as f64),
        TopologySpec::StreamedUnitDisk { n, radius, .. } => {
            let nf = *n as f64;
            of(*n, nf * nf * std::f64::consts::PI * radius * radius / 2.0)
        }
        TopologySpec::StreamedGnp { n, p, .. } => {
            let nf = *n as f64;
            of(*n, nf * (nf - 1.0) / 2.0 * p)
        }
        _ => unreachable!("materialized specs report measured CSR bytes"),
    }
}

/// Runs one declared scenario and records the measurement row. For
/// materialized specs the graph is built outside the timer so `wall_ms`
/// tracks the broadcast alone (the pre-facade semantics of this column);
/// streamed specs run the engine directly over the implicit topology — no
/// CSR is ever built, and the O(n) spatial-index construction inside the
/// timer is noise next to the run itself.
fn measure(name: &'static str, scenario: Scenario) -> Entry {
    let streamed = scenario.topology().streamed().is_some();
    let (out, wall_ms, materialized_topology_bytes) = if streamed {
        let t = Instant::now();
        let out = scenario.run();
        (out, t.elapsed().as_secs_f64() * 1e3, csr_estimate(scenario.topology()))
    } else {
        let graph = scenario.graph();
        let csr = Topology::resident_bytes(&graph);
        let t = Instant::now();
        let out = scenario.run_on(&graph);
        (out, t.elapsed().as_secs_f64() * 1e3, csr)
    };
    Entry {
        name,
        topology: scenario.topology().label(),
        workload: scenario.workload().kind(),
        seed: scenario.master_seed(),
        faults: scenario.fault_plan().label(),
        rounds: out.completion_round.expect("pipeline completes"),
        cap: out.cap,
        wall_ms,
        stats: out.stats,
        streamed,
        peak_state_bytes: out.peak_state_bytes,
        materialized_topology_bytes,
    }
}

/// The schema-7 parallel-sweep section: the E1 corridor swept over 64
/// seeds, serially and on the machine-sized work-stealing pool.
struct SweepSection {
    seeds: u64,
    workers: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    /// Shard-merged matrix == serial matrix, full `Debug` equality — the
    /// executor's bit-identity contract, re-proven on every bench run.
    merged_matches_serial: bool,
    best_rounds: u64,
    worst_rounds: u64,
}

/// Sweeps the corridor twice — `Scenario::seeds` serially, then the
/// work-stealing pool — and compares wall clocks and matrices. On a
/// one-core runner the pool degenerates to the inline path and the speedup
/// hovers near 1x; `check_bench.py` asserts speedup only when `workers > 1`.
fn sweep_section(seeds: u64) -> SweepSection {
    let corridor = Scenario::new(
        TopologySpec::ClusterChain { clusters: 20, size: 6 },
        Workload::Single { payload: 0xFEED },
    );

    let t = Instant::now();
    let serial = corridor.seeds(0..seeds);
    let serial_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let product = SweepProduct::new().scenario(corridor).seeds(0..seeds);
    let pool = SweepPool::new();
    let t = Instant::now();
    let merged = pool.run(&product);
    let parallel_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    SweepSection {
        seeds,
        workers: pool.worker_count(),
        serial_wall_ms,
        parallel_wall_ms,
        merged_matches_serial: format!("{:?}", merged[0]) == format!("{serial:?}"),
        best_rounds: serial.best_rounds().expect("corridor sweep completes"),
        worst_rounds: serial.worst_rounds().expect("corridor sweep completes"),
    }
}

/// The idle-heavy engine microbench: Decay broadcast from one end of a
/// million-node path, where almost every node is uninformed (and therefore
/// asleep on the wake path) for the whole run.
fn idle_microbench(n: usize, rounds: u64) -> (f64, f64, RunStats) {
    let make_graph = || generators::path(n);
    let params = Params::scaled(n);

    // Time only the simulated rounds: graph/simulator construction is the
    // same O(n) on both paths and would mask the per-round contrast.
    let mut dense = Simulator::new(make_graph(), CollisionMode::NoDetection, 1, |id| {
        DenseWrap(DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(1))))
    });
    let t = Instant::now();
    dense.run(rounds);
    let dense_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut wake = Simulator::new(make_graph(), CollisionMode::NoDetection, 1, |id| {
        DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(1)))
    });
    let t = Instant::now();
    wake.run(rounds);
    let wake_ms = t.elapsed().as_secs_f64() * 1e3;

    // The wake path must be a faithful fast path, not a different run.
    assert_eq!(dense.stats().transmissions, wake.stats().transmissions);
    assert_eq!(dense.stats().deliveries, wake.stats().deliveries);
    (dense_ms, wake_ms, wake.stats().clone())
}

fn json_entry(out: &mut String, e: &Entry) {
    let _ = write!(
        out,
        "    {{\"name\": \"{}\", \
         \"scenario\": {{\"topology\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \
         \"faults\": \"{}\"}}, \
         \"rounds\": {}, \"cap\": {}, \"wall_ms\": {:.2}, \
         \"transmissions\": {}, \"deliveries\": {}, \"observe_skips\": {}, \
         \"act_skips\": {}, \"idle_fastforward\": {}, \
         \"erased\": {}, \"jammed\": {}, \"churn_events\": {}, \
         \"retries\": {}, \"votes_overturned\": {}, \"ring_repairs\": {}, \
         \"regional_repairs\": {}, \"fallback_rounds\": {}, \
         \"streamed\": {}, \"peak_state_bytes\": {}, \
         \"materialized_topology_bytes\": {}}}",
        e.name,
        e.topology,
        e.workload,
        e.seed,
        e.faults,
        e.rounds,
        e.cap,
        e.wall_ms,
        e.stats.transmissions,
        e.stats.deliveries,
        e.stats.observe_skips,
        e.stats.act_skips,
        e.stats.idle_fastforward,
        e.stats.erased,
        e.stats.jammed,
        e.stats.churn_events,
        e.stats.retries,
        e.stats.votes_overturned,
        e.stats.ring_repairs,
        e.stats.regional_repairs,
        e.stats.fallback_rounds,
        e.streamed,
        e.peak_state_bytes,
        e.materialized_topology_bytes,
    );
}

fn main() {
    let entries = vec![
        // E1: the emergency-alert corridor (Theorem 1.1, adaptive).
        measure(
            "e1_corridor_single",
            Scenario::new(
                TopologySpec::ClusterChain { clusters: 20, size: 6 },
                Workload::Single { payload: 0xFEED },
            )
            .seed(1),
        ),
        // E2: a dense unit-disk deployment (Theorem 1.1, adaptive).
        measure(
            "e2_unit_disk_single",
            Scenario::new(
                TopologySpec::UnitDisk { n: 80, radius: 0.18, graph_seed: 2024 },
                Workload::Single { payload: 0xFEED },
            )
            .seed(1),
        ),
        // The telemetry-backhaul scenario (Theorem 1.3, adaptive, FullK).
        measure(
            "multi_telemetry_backhaul",
            Scenario::new(
                TopologySpec::ClusterChain { clusters: 6, size: 6 },
                Workload::MultiUnknown { messages: payloads(8), batch: BatchMode::FullK },
            )
            .seed(11),
        ),
        // The firmware-update topology (Theorem 1.3, adaptive, generations).
        measure(
            "multi_firmware_grid",
            Scenario::new(
                TopologySpec::Grid { w: 6, h: 6 },
                Workload::MultiUnknown { messages: payloads(8), batch: BatchMode::Generations(4) },
            )
            .seed(3),
        ),
        // The telemetry backhaul over a lossy channel (5% packet erasure),
        // with the ring-handoff FEC repair knob engaged — the adversarial
        // entry whose fault counters schema 3 required. Since schema 4 the
        // repair rate adapts to the measured erasure rate, so this entry
        // also tracks the recovery machinery's round-count win.
        measure(
            "multi_lossy_telemetry",
            Scenario::new(
                TopologySpec::ClusterChain { clusters: 6, size: 6 },
                Workload::MultiUnknown { messages: payloads(8), batch: BatchMode::FullK },
            )
            .seed(11)
            .faults(FaultPlan::none().with_erasure(0.05))
            .fec_repair(2),
        ),
        // The degraded corridor (schema 4): E1 under heavy erasure — the
        // scenario the recovery machinery exists for. Pre-recovery this run
        // capped out; since schema 5 the staged ladder repairs the failed
        // ring locally before anything global, and check_bench.py gates on
        // the ring_repairs counter being visibly nonzero.
        measure(
            "e1_degraded_corridor",
            Scenario::new(
                TopologySpec::ClusterChain { clusters: 20, size: 6 },
                Workload::Single { payload: 0xFEED },
            )
            .seed(1)
            .faults(FaultPlan::none().with_erasure(0.2)),
        ),
        // The mobile grid (schema 5): unit-disk positions re-sampled every
        // 32 rounds, so the topology the pipeline learned during
        // construction is repeatedly yanked away — the fault class that
        // exercises the ladder's global rungs hardest.
        measure(
            "e3_degraded_mobile_grid",
            Scenario::new(TopologySpec::Grid { w: 6, h: 6 }, Workload::Single { payload: 0xFEED })
                .seed(1)
                .faults(FaultPlan::none().with_mobility(0.35, 32)),
        ),
        // The million-node deployment (schema 6): Theorem 1.1 over a
        // streamed hashed unit disk whose ~1.8 GB CSR is never built — the
        // engine pulls neighborhoods on demand and `peak_state_bytes` stays
        // under a quarter of the materialized cost, which check_bench.py
        // gates on. Recruiting runs the leaned 2·log n iterations (the
        // scaled() default of 4·log n doubles the rounds at this scale
        // without changing the outcome at the pinned seed); the round pin
        // holds the configuration honest. This is the entry the streamed
        // topology layer exists for. Same configuration as
        // examples/million_stream.rs.
        measure("m1_million_disk_single", {
            let mut params = Params::scaled(1_000_000);
            params.recruit_iterations = 2 * params.log_n;
            Scenario::new(
                TopologySpec::StreamedUnitDisk { n: 1_000_000, radius: 0.012, graph_seed: 2026 },
                Workload::Single { payload: 0xFEED },
            )
            .params(params)
            .seed(1)
        }),
    ];

    let (n, rounds) = (1_000_000, 300);
    let (dense_ms, wake_ms, wake_stats) = idle_microbench(n, rounds);
    let speedup = dense_ms / wake_ms.max(1e-9);

    let sweep = sweep_section(64);
    let sweep_speedup = sweep.serial_wall_ms / sweep.parallel_wall_ms.max(1e-9);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"generated_by\": \"cargo bench --bench perf_pipeline\",");
    let _ = writeln!(out, "  \"schema\": 7,");
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        json_entry(&mut out, e);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"sweep\": {{\"name\": \"sweep_corridor_single\", \
         \"topology\": \"cluster_chain(20x6)\", \"workload\": \"single\", \
         \"seeds\": {}, \"workers\": {}, \"serial_wall_ms\": {:.2}, \
         \"parallel_wall_ms\": {:.2}, \"speedup\": {:.2}, \
         \"merged_matches_serial\": {}, \"best_rounds\": {}, \
         \"worst_rounds\": {}}},",
        sweep.seeds,
        sweep.workers,
        sweep.serial_wall_ms,
        sweep.parallel_wall_ms,
        sweep_speedup,
        sweep.merged_matches_serial,
        sweep.best_rounds,
        sweep.worst_rounds,
    );
    let _ = writeln!(
        out,
        "  \"idle_microbench\": {{\"nodes\": {n}, \"rounds\": {rounds}, \
         \"dense_ms\": {dense_ms:.2}, \"wake_ms\": {wake_ms:.2}, \"speedup\": {speedup:.1}, \
         \"act_skips\": {}}}",
        wake_stats.act_skips
    );
    out.push_str("}\n");

    for e in &entries {
        println!(
            "{:>26}: {:>7} rounds (cap {:>9}) in {:>8.2} ms  \
             [{} seed {}; obs skips {}, act skips {}; peak {:.1} MB vs {:.1} MB CSR{}]",
            e.name,
            e.rounds,
            e.cap,
            e.wall_ms,
            e.topology,
            e.seed,
            e.stats.observe_skips,
            e.stats.act_skips,
            e.peak_state_bytes as f64 / 1e6,
            e.materialized_topology_bytes as f64 / 1e6,
            if e.streamed { ", streamed" } else { "" },
        );
    }
    println!(
        "{:>26}: dense {dense_ms:.1} ms vs wake {wake_ms:.1} ms -> {speedup:.0}x on {n} nodes",
        "idle_microbench"
    );
    assert!(speedup >= 50.0, "idle microbench speedup regressed: {speedup:.1}x < 50x");
    println!(
        "{:>26}: serial {:.1} ms vs {} worker(s) {:.1} ms -> {sweep_speedup:.2}x over {} seeds \
         (rounds {}..{}, merged == serial: {})",
        "sweep_corridor_single",
        sweep.serial_wall_ms,
        sweep.workers,
        sweep.parallel_wall_ms,
        sweep.seeds,
        sweep.best_rounds,
        sweep.worst_rounds,
        sweep.merged_matches_serial,
    );
    assert!(sweep.merged_matches_serial, "parallel sweep diverged from the serial matrix");

    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    std::fs::write(&path, out).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
