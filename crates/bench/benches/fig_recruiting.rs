//! E5 — Lemma 2.3: recruiting success rate vs iteration budget.
//!
//! Paper-predicted shape: success probability rises toward 1 as iterations
//! approach Θ(log^2 n).

use bench::*;
use broadcast::recruiting::{standalone::RecruitNode, RecruitConfig};
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, Simulator};

fn main() {
    header(
        "E5: recruiting success vs iterations (16 reds, 48 blues, p=0.15)",
        &["iterations", "recruited %"],
    );
    let params = Params::scaled(64);
    for mult in [1u32, 2, 4, 8, 16] {
        let iterations = mult * params.log_n;
        let cfg = RecruitConfig {
            iterations,
            phase_len: params.decay_phase_len(),
            density_hold: (iterations / (params.decay_phase_len() + 1)).max(1),
        };
        let mut recruited = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let mut rng = stream_rng(seed, 42);
            let bp = generators::random_bipartite(16, 48, 0.15, &mut rng);
            let mut sim =
                Simulator::new(bp.graph.clone(), CollisionMode::NoDetection, seed, |id| {
                    if id.index() < 16 {
                        RecruitNode::red(cfg, id.raw())
                    } else {
                        RecruitNode::blue(cfg, id.raw())
                    }
                });
            sim.run(u64::from(cfg.total_rounds()));
            recruited += sim.nodes()[16..].iter().filter(|n| n.recruited().is_some()).count();
            total += 48;
        }
        row(
            &format!("{iterations}"),
            &[format!("{iterations}"), format!("{:.1}%", 100.0 * recruited as f64 / total as f64)],
        );
    }
}
