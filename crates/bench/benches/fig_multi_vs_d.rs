//! E10 — Theorem 1.2: k-message rounds vs D at fixed k (additive D term).

use bench::*;
use broadcast::schedule::SlowKey;
use broadcast::Params;

fn main() {
    header("E10: 8-message rounds vs D (cluster chains, n ~ 96)", &["D", "RLNC (T1.2)"]);
    for clusters in [4usize, 8, 16, 32] {
        let g = chain_with_n(clusters, 96);
        let params = Params::scaled(g.node_count());
        let d = diameter(&g);
        let r: Vec<_> =
            (0..SEEDS).map(|s| run_known_k(&g, &params, s, 8, SlowKey::VirtualDistance)).collect();
        row(&format!("{d}"), &[format!("{d}"), cell(mean_std(&r))]);
    }
    println!("(expect: roughly constant slope ~1 in D once k·log n is paid)");
}
