//! E14 — packet-size audit: every protocol's packets against B = Θ(log n).
//!
//! Generations keep RLNC coefficient overhead at O(log n) bits; FullK coding
//! deliberately exceeds the budget for k >> log n (reported, as discussed in
//! Section 3.4 of the paper).

use broadcast::construction::GstMsg;
use broadcast::recruiting::{CountClass, RecruitMsg};
use radio_sim::model::PacketBits;
use rlnc::gf2::BitVec;
use rlnc::CodedPacket;

fn main() {
    let n: usize = 1024;
    let log_n = radio_sim::graph::ceil_log2(n);
    let b_budget = 8 * log_n as usize + 64; // B = Θ(log n) + payload word
    println!("\n=== E14: packet bits vs budget B = {b_budget} (n = {n}) ===");
    let rows: Vec<(&str, usize)> = vec![
        ("wave beep", 1),
        ("recruit beacon", RecruitMsg::Beacon { red: 1, class: CountClass::One }.packet_bits()),
        ("recruit response", RecruitMsg::Response { blue: 1, red: 2 }.packet_bits()),
        ("gst rank announce", GstMsg::RankAnnounce { red: 1, rank: 3 }.packet_bits()),
        (
            "rlnc packet (generation log n)",
            CodedPacket::plaintext(log_n as usize, 0, BitVec::zero(64)).packet_bits(),
        ),
        ("rlnc packet (FullK k=64)", CodedPacket::plaintext(64, 0, BitVec::zero(64)).packet_bits()),
    ];
    for (name, bits) in rows {
        let verdict = if bits <= b_budget { "ok" } else { "OVER (documented)" };
        println!("{name:>32} | {bits:>6} bits | {verdict}");
    }
}
