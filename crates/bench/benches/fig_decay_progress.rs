//! E15 — Lemma 2.2: per-phase Decay reception probability is at least 1/8,
//! for any number of contending informed neighbors.
//!
//! Setup: a star whose leaves all hold the message and run the Decay
//! pattern; the center is a pure listener. Each phase of ⌈log2 n⌉ rounds is
//! scored by whether the center received at least one message.

use broadcast::decay::DecaySchedule;
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::{Action, CollisionMode, Observation, Protocol, Simulator};
use rand::rngs::SmallRng;

#[derive(Debug)]
struct Contender {
    transmits: bool,
    schedule: DecaySchedule,
    received_this_phase: bool,
}

impl Protocol for Contender {
    type Msg = u8;
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<u8> {
        if self.transmits && self.schedule.fires(round, rng) {
            Action::Transmit(1)
        } else {
            Action::Listen
        }
    }
    fn observe(&mut self, _round: u64, obs: Observation<u8>, _rng: &mut SmallRng) {
        if obs.is_message() {
            self.received_this_phase = true;
        }
    }
}

fn main() {
    println!(
        "\n=== E15: Decay per-phase reception probability (listener center, contenders sweep) ==="
    );
    println!("{:>12} | {:>12} | {:>8}", "contenders", "P(receive)", ">= 1/8?");
    for leaves in [1usize, 2, 4, 16, 64, 256] {
        let params = Params::scaled(leaves + 1);
        let schedule = DecaySchedule::new(params.decay_phase_len());
        let phase = u64::from(params.decay_phase_len());
        let mut received_phases = 0u64;
        let mut total_phases = 0u64;
        for seed in 0..10u64 {
            let g = generators::star(leaves + 1);
            let mut sim = Simulator::new(g, CollisionMode::NoDetection, seed, |id| Contender {
                transmits: id.index() != 0,
                schedule,
                received_this_phase: false,
            });
            for _ in 0..100 {
                sim.node_mut(radio_sim::NodeId::new(0)).received_this_phase = false;
                sim.run(phase);
                total_phases += 1;
                if sim.node(radio_sim::NodeId::new(0)).received_this_phase {
                    received_phases += 1;
                }
            }
        }
        let p = received_phases as f64 / total_phases as f64;
        println!("{leaves:>12} | {p:>12.3} | {:>8}", if p >= 0.125 { "yes" } else { "NO" });
        assert!(p >= 0.125, "Lemma 2.2 violated at {leaves} contenders");
    }
}
