//! E6 — Lemma 2.4: the Bipartite Assignment converges in O(log n) epochs.
//!
//! Measured through the centralized construction's epoch accounting: average
//! epochs consumed per non-trivial rank subproblem stays O(log n) as n grows.

use bench::*;
use radio_sim::graph::generators;
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

fn main() {
    header(
        "E6: assignment epochs per boundary-rank subproblem",
        &["n", "epochs/subproblem", "fallbacks"],
    );
    for n in [32usize, 64, 128, 256] {
        let mut epochs = 0u64;
        let mut problems = 0u64;
        let mut fallbacks = 0u64;
        for seed in 0..SEEDS {
            let mut rng = stream_rng(seed, 7);
            let g = generators::gnp_connected(n, 3.0 / n as f64, &mut rng);
            let (tree, report) =
                gst::build_gst(&g, &[NodeId::new(0)], &mut rng, &gst::BuildConfig::for_nodes(n));
            epochs += report.epochs;
            // Non-trivial subproblems ~ boundaries × ranks present.
            problems += u64::from(tree.max_level()) * u64::from(tree.max_rank().max(1));
            fallbacks += report.fallback_assignments;
        }
        row(
            &format!("{n}"),
            &[
                format!("{n}"),
                format!("{:.2}", epochs as f64 / problems.max(1) as f64),
                format!("{fallbacks}"),
            ],
        );
    }
    println!("(expect: epochs/subproblem stays O(log n); fallbacks 0)");
}
