//! E7 — Lemma 3.2: Decay is multi-message viable — noise from non-holders
//! does not change the O(D log n + log^2 n) completion shape.

use bench::*;
use broadcast::decay::MmvDecayBroadcast;
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::{CollisionMode, NodeId, Simulator};

fn run(width: usize, noise: bool, seed: u64) -> Option<u64> {
    // Grids have multi-parent levels, so Decay contention is real.
    let g = generators::grid(width, 5);
    let layering = g.bfs(NodeId::new(0));
    let params = Params::scaled(g.node_count());
    let levels: Vec<u32> = g.node_ids().map(|v| layering.level(v)).collect();
    let mut sim = Simulator::new(g, CollisionMode::NoDetection, seed, |id| {
        MmvDecayBroadcast::new(&params, levels[id.index()], noise, (id.index() == 0).then_some(1))
    });
    sim.run_until(MAX_ROUNDS, |ns| ns.iter().all(MmvDecayBroadcast::is_informed))
}

fn main() {
    header(
        "E7: layered Decay with and without noise senders (grids w x 5)",
        &["D", "silent", "noisy (MMV)"],
    );
    for width in [6usize, 12, 24] {
        let d = width + 4 - 1;
        let silent: Vec<_> = (0..SEEDS).map(|s| run(width, false, s)).collect();
        let noisy: Vec<_> = (0..SEEDS).map(|s| run(width, true, s)).collect();
        row(&format!("{d}"), &[format!("{d}"), cell(mean_std(&silent)), cell(mean_std(&noisy))]);
    }
    println!("(expect: both columns grow with the same D·log n shape)");
}
