//! E16 — Lemma 3.4: virtual distances are bounded by 2·⌈log2 n⌉.

use radio_sim::graph::{ceil_log2, generators};
use radio_sim::rng::stream_rng;
use radio_sim::NodeId;

fn main() {
    println!("\n=== E16: max virtual distance vs the 2*ceil(log2 n) bound ===");
    println!("{:>12} | {:>6} | {:>10} | {:>6}", "graph", "n", "max vdist", "bound");
    let mut rng = stream_rng(3, 0);
    let cases = vec![
        ("path128", generators::path(128)),
        ("grid10x10", generators::grid(10, 10)),
        ("chain10x6", generators::cluster_chain(10, 6)),
        ("gnp128", generators::gnp_connected(128, 0.04, &mut rng)),
        ("udg150", generators::unit_disk(150, 0.15, &mut rng)),
    ];
    for (name, g) in cases {
        let mut rng = stream_rng(7, 1);
        let (tree, _) = gst::build_gst(
            &g,
            &[NodeId::new(0)],
            &mut rng,
            &gst::BuildConfig::for_nodes(g.node_count()),
        );
        let vd = gst::VirtualDistances::compute(&g, &tree);
        let bound = 2 * ceil_log2(g.node_count());
        println!("{:>12} | {:>6} | {:>10} | {:>6}", name, g.node_count(), vd.max(), bound);
        assert!(vd.max() <= bound, "Lemma 3.4 violated on {name}");
    }
}
