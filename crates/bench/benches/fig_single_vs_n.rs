//! E2 — Theorem 1.1: single-message rounds vs n at fixed diameter.
//!
//! Paper-predicted shape: at fixed D, GHK-CD grows only polylogarithmically
//! with n; Decay picks up a full multiplicative log n on the D term.

use bench::*;
use broadcast::single_message::Ghk1Plan;
use radio_sim::graph::generators;
use radio_sim::NodeId;

fn main() {
    header(
        "E2: single-message rounds vs n (cluster chains, 6 clusters, D = 11)",
        &["n", "GHK-CD (adaptive)", "GHK cap", "Decay (BGI)", "CR-style"],
    );
    for size in [4usize, 8, 16] {
        let g = generators::cluster_chain(6, size);
        let params = bench_params(g.node_count());
        let ghk: Vec<_> = (0..SEEDS).map(|s| run_ghk_single(&g, &params, s)).collect();
        let decay: Vec<_> = (0..SEEDS).map(|s| run_decay(&g, &params, s)).collect();
        let cr: Vec<_> = (0..SEEDS).map(|s| run_cr(&g, &params, s)).collect();
        use radio_sim::graph::Traversal;
        let cap = Ghk1Plan::new(&params, g.bfs(NodeId::new(0)).max_level()).total_rounds();
        row(
            &format!("{}", g.node_count()),
            &[
                format!("{}", g.node_count()),
                cell(mean_std(&ghk)),
                format!("{cap}"),
                cell(mean_std(&decay)),
                cell(mean_std(&cr)),
            ],
        );
    }
    println!("(adaptive rounds should grow polylogarithmically with n at fixed D; the cap");
    println!(" column is the worst-case guarantee the adaptive run never exceeds)");
}
