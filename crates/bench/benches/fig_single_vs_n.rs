//! E2 — Theorem 1.1: single-message rounds vs n at fixed diameter.
//!
//! Paper-predicted shape: at fixed D, GHK-CD grows only polylogarithmically
//! with n; Decay picks up a full multiplicative log n on the D term.

use bench::*;
use radio_sim::graph::generators;

fn main() {
    header(
        "E2: single-message rounds vs n (cluster chains, 6 clusters, D = 11)",
        &["n", "GHK-CD (T1.1)", "Decay (BGI)", "CR-style"],
    );
    for size in [4usize, 8, 16] {
        let g = generators::cluster_chain(6, size);
        let params = bench_params(g.node_count());
        let ghk: Vec<_> = (0..SEEDS).map(|s| run_ghk_single(&g, &params, s)).collect();
        let decay: Vec<_> = (0..SEEDS).map(|s| run_decay(&g, &params, s)).collect();
        let cr: Vec<_> = (0..SEEDS).map(|s| run_cr(&g, &params, s)).collect();
        row(
            &format!("{}", g.node_count()),
            &[
                format!("{}", g.node_count()),
                cell(mean_std(&ghk)),
                cell(mean_std(&decay)),
                cell(mean_std(&cr)),
            ],
        );
    }
}
