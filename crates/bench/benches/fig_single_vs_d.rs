//! E1 — Theorem 1.1: single-message rounds vs diameter at (roughly) fixed n.
//!
//! Paper-predicted shape: Decay grows like D·log n and CR-style like
//! D·log(n/D). With *adaptive* phase termination the GHK pipeline's setup
//! (wave + parallel per-ring GST construction) costs what it actually uses
//! rather than its worst-case windows, so the end-to-end column is now
//! competitive at simulation scale; the worst-case cap column shows the
//! guarantee the run never exceeds.

use bench::*;
use broadcast::single_message::broadcast_single;
use radio_sim::NodeId;

fn main() {
    header(
        "E1: single-message rounds vs D (cluster chains, n ~ 72)",
        &["D", "GHK end-to-end", "GHK setup", "GHK cap", "Decay (BGI)", "CR-style", "GPX known"],
    );
    for clusters in [4usize, 8, 16] {
        let g = chain_with_n(clusters, 72);
        let params = bench_params(g.node_count());
        let d = diameter(&g);
        let mut e2e: Vec<Option<u64>> = Vec::new();
        let mut setup: Vec<Option<u64>> = Vec::new();
        let mut cap = 0u64;
        for s in 0..SEEDS {
            let out = broadcast_single(&g, NodeId::new(0), 1, &params, s);
            e2e.push(out.completion_round);
            setup.push(Some(out.phases.setup()));
            cap = out.plan.total_rounds();
        }
        let decay: Vec<_> = (0..SEEDS).map(|s| run_decay(&g, &params, s)).collect();
        let cr: Vec<_> = (0..SEEDS).map(|s| run_cr(&g, &params, s)).collect();
        let gpx: Vec<_> = (0..SEEDS).map(|s| run_gpx_known(&g, &params, s)).collect();
        row(
            &format!("{clusters}cl/D={d}"),
            &[
                format!("{d}"),
                cell(mean_std(&e2e)),
                cell(mean_std(&setup)),
                format!("{cap}"),
                cell(mean_std(&decay)),
                cell(mean_std(&cr)),
                cell(mean_std(&gpx)),
            ],
        );
    }
    println!("(expect: adaptive end-to-end within a small factor of Decay; the cap column");
    println!(" keeps the O(D + polylog) worst-case shape the theorem guarantees)");
}
