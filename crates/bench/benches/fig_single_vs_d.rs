//! E1 — Theorem 1.1: single-message rounds vs diameter at (roughly) fixed n.
//!
//! Paper-predicted shape: Decay grows like D·log n and CR-style like
//! D·log(n/D). The GHK pipeline's *broadcast phase* grows additively in D
//! (slope O(1)); its end-to-end cost at simulation scale is dominated by the
//! one-time GST construction (sequential per ring: D'·log^5 n), which the
//! paper amortizes with rings + pipelining at paper-scale D. Both columns are
//! reported; EXPERIMENTS.md discusses the crossover.

use bench::*;
use broadcast::single_message::broadcast_single;
use radio_sim::NodeId;

fn main() {
    header(
        "E1: single-message rounds vs D (cluster chains, n ~ 72)",
        &["D", "GHK end-to-end", "GHK bcast-phase", "Decay (BGI)", "CR-style", "GPX known-topo"],
    );
    for clusters in [4usize, 8, 16] {
        let g = chain_with_n(clusters, 72);
        let params = bench_params(g.node_count());
        let d = diameter(&g);
        let mut e2e: Vec<Option<u64>> = Vec::new();
        let mut phase: Vec<Option<u64>> = Vec::new();
        for s in 0..SEEDS {
            let out = broadcast_single(&g, NodeId::new(0), 1, &params, s);
            e2e.push(out.completion_round);
            let setup = u64::from(out.plan.d_bound) + out.plan.cons_rounds;
            phase.push(out.completion_round.map(|r| r.saturating_sub(setup)));
        }
        let decay: Vec<_> = (0..SEEDS).map(|s| run_decay(&g, &params, s)).collect();
        let cr: Vec<_> = (0..SEEDS).map(|s| run_cr(&g, &params, s)).collect();
        let gpx: Vec<_> = (0..SEEDS).map(|s| run_gpx_known(&g, &params, s)).collect();
        row(
            &format!("{clusters}cl/D={d}"),
            &[
                format!("{d}"),
                cell(mean_std(&e2e)),
                cell(mean_std(&phase)),
                cell(mean_std(&decay)),
                cell(mean_std(&cr)),
                cell(mean_std(&gpx)),
            ],
        );
    }
    println!(
        "(expect: bcast-phase and GPX slopes ~O(1) per D unit; Decay slope ~log n per D unit;"
    );
    println!(" end-to-end is construction-dominated at simulation scale — see EXPERIMENTS.md E1)");
}
