//! E9 — Theorem 1.2: k-message rounds vs k (known topology).
//!
//! Paper-predicted shape: RLNC on the MMV schedule scales as D + k·log n;
//! routing (no coding) is slower; k × single-message is far slower.

use bench::*;
use broadcast::schedule::SlowKey;
use broadcast::Params;
use radio_sim::graph::generators;

fn main() {
    header(
        "E9: k-message rounds vs k on grid 7x7 (known topology)",
        &["k", "RLNC (T1.2)", "routing", "k x single"],
    );
    let g = generators::grid(7, 7);
    let params = Params::scaled(g.node_count());
    for k in [2usize, 4, 8, 16, 32] {
        let rlnc: Vec<_> =
            (0..SEEDS).map(|s| run_known_k(&g, &params, s, k, SlowKey::VirtualDistance)).collect();
        let routing: Vec<_> = (0..SEEDS).map(|s| run_routing_k(&g, &params, s, k)).collect();
        let repeat: Vec<_> = (0..SEEDS)
            .map(|s| {
                baselines::repeat::rounds_estimate(&g, radio_sim::NodeId::new(0), k, &params, s)
            })
            .collect();
        row(
            &format!("{k}"),
            &[
                format!("{k}"),
                cell(mean_std(&rlnc)),
                cell(mean_std(&routing)),
                cell(mean_std(&repeat)),
            ],
        );
    }
}
