//! E4 — GST structure: max rank vs the ⌈log2 n⌉ bound, stretch statistics,
//! centralized vs distributed agreement.

use bench::*;
use broadcast::construction::{ConstructionSchedule, GstConstructionNode};
use broadcast::Params;
use radio_sim::graph::{generators, Traversal};
use radio_sim::rng::stream_rng;
use radio_sim::{CollisionMode, Graph, NodeId, Simulator};

fn stats(g: &Graph, seed: u64) -> (u32, u32, usize, f64, usize) {
    let mut rng = stream_rng(seed, 0);
    let (tree, _) = gst::build_gst(
        g,
        &[NodeId::new(0)],
        &mut rng,
        &gst::BuildConfig::for_nodes(g.node_count()),
    );
    let stretches = tree.stretches();
    let longest = stretches.iter().map(|s| s.len()).max().unwrap_or(0);
    let avg = stretches.iter().map(|s| s.len()).sum::<usize>() as f64 / stretches.len() as f64;
    // Distributed construction for comparison.
    let params = Params::scaled(g.node_count());
    let layering = g.bfs(NodeId::new(0));
    let sched = ConstructionSchedule::new(&params, layering.max_level().max(1));
    let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
        GstConstructionNode::new(&params, sched, id.raw(), layering.level(id))
    });
    sim.run(sched.total_rounds() + 1);
    let dist_max_rank = sim.nodes().iter().map(|n| n.labels().rank).max().unwrap_or(0);
    (tree.max_rank(), dist_max_rank, longest, avg, stretches.len())
}

fn main() {
    header(
        "E4: GST quality (centralized vs distributed)",
        &["graph", "log2n bound", "rank (cent)", "rank (dist)", "stretches (max/avg/#)"],
    );
    let mut rng = stream_rng(99, 0);
    let cases: Vec<(&str, Graph)> = vec![
        ("path64", generators::path(64)),
        ("grid8x8", generators::grid(8, 8)),
        ("chain8x8", generators::cluster_chain(8, 8)),
        ("gnp64", generators::gnp_connected(64, 0.08, &mut rng)),
        ("udg100", generators::unit_disk(100, 0.18, &mut rng)),
    ];
    for (name, g) in cases {
        let bound = radio_sim::graph::ceil_log2(g.node_count());
        let (cmax, dmax, longest, avg, count) = stats(&g, 1);
        assert!(cmax <= bound, "rank bound violated");
        row(
            name,
            &[
                name.to_string(),
                format!("{bound}"),
                format!("{cmax}"),
                format!("{dmax}"),
                format!("{longest}/{avg:.1}/{count}"),
            ],
        );
    }
}
