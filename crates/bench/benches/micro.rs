//! Micro-benchmarks: GF(2) kernels and simulator round throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use radio_sim::graph::generators;
use radio_sim::{Action, CollisionMode, Observation, Protocol, Simulator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rlnc::gf2::{BitMatrix, BitVec};
use rlnc::Decoder;

fn gf2_benches(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = BitVec::random(4096, &mut rng);
    let b = BitVec::random(4096, &mut rng);
    c.bench_function("gf2_xor_4096", |bench| {
        bench.iter(|| {
            let mut x = a.clone();
            x.xor_assign(&b);
            x
        })
    });
    c.bench_function("gf2_dot_4096", |bench| bench.iter(|| a.dot(&b)));
    c.bench_function("gf2_rank_64x64", |bench| {
        let mut m = BitMatrix::new(64);
        for _ in 0..64 {
            m.push_row(BitVec::random(64, &mut rng));
        }
        bench.iter(|| m.rank())
    });
    c.bench_function("rlnc_decode_32", |bench| {
        let msgs: Vec<BitVec> = (0..32).map(|i| BitVec::from_u64(i, 64)).collect();
        let src = Decoder::with_messages(&msgs);
        bench.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut sink = Decoder::new(32, 64);
            while !sink.can_decode() {
                sink.insert(src.random_combination(&mut rng).unwrap());
            }
            sink.rank()
        })
    });
}

#[derive(Debug)]
struct Chatter;
impl Protocol for Chatter {
    type Msg = u64;
    fn act(&mut self, _r: u64, rng: &mut SmallRng) -> Action<u64> {
        if rng.gen_bool(0.2) {
            Action::Transmit(7)
        } else {
            Action::Listen
        }
    }
    fn observe(&mut self, _r: u64, _o: Observation<u64>, _rng: &mut SmallRng) {}
}

fn engine_benches(c: &mut Criterion) {
    c.bench_function("engine_1k_rounds_grid16x16", |bench| {
        bench.iter(|| {
            let g = generators::grid(16, 16);
            let mut sim = Simulator::new(g, CollisionMode::Detection, 3, |_| Chatter);
            sim.run(1000);
            sim.stats().deliveries
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = gf2_benches, engine_benches
}
criterion_main!(benches);
