//! E8 — Section 3.2's key design choice: slow transmissions keyed on virtual
//! distance (MMV) vs BFS level (GPX-style) under multi-message load.
//!
//! Paper-predicted shape: the level-keyed schedule degrades (or stalls) as k
//! grows because its progress argument breaks under other-message noise; the
//! virtual-distance schedule scales as D + k·log n.

use bench::*;
use broadcast::schedule::SlowKey;
use broadcast::Params;
use radio_sim::graph::generators;

fn main() {
    header(
        "E8: slow-key ablation on cluster_chain(5,6), k sweep",
        &["k", "virtual-dist (paper)", "level-keyed (GPX)"],
    );
    let g = generators::cluster_chain(5, 6);
    let params = Params::scaled(g.node_count());
    for k in [1usize, 4, 8, 16] {
        let vd: Vec<_> =
            (0..SEEDS).map(|s| run_known_k(&g, &params, s, k, SlowKey::VirtualDistance)).collect();
        let lv: Vec<_> =
            (0..SEEDS).map(|s| run_known_k(&g, &params, s, k, SlowKey::Level)).collect();
        row(&format!("{k}"), &[format!("{k}"), cell(mean_std(&vd)), cell(mean_std(&lv))]);
    }
}
