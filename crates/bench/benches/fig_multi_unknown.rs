//! E11 — Theorem 1.3 vs Theorem 1.2: the price of not knowing the topology.
//!
//! Paper-predicted shape: the unknown-topology pipeline pays a fixed
//! polylog setup (layering + GST construction + labeling) on top of the
//! known-topology dissemination cost; the k-dependence is identical.

use bench::*;
use broadcast::multi_message::BatchMode;
use broadcast::schedule::SlowKey;
use radio_sim::graph::generators;

fn main() {
    header(
        "E11: known vs unknown topology, k sweep on cluster_chain(4,6)",
        &["k", "known (T1.2)", "unknown (T1.3)"],
    );
    let g = generators::cluster_chain(4, 6);
    let params = bench_params(g.node_count());
    for k in [2usize, 4, 8] {
        let known: Vec<_> =
            (0..SEEDS).map(|s| run_known_k(&g, &params, s, k, SlowKey::VirtualDistance)).collect();
        let unknown: Vec<_> =
            (0..SEEDS).map(|s| run_unknown_k(&g, &params, s, k, BatchMode::FullK)).collect();
        row(&format!("{k}"), &[format!("{k}"), cell(mean_std(&known)), cell(mean_std(&unknown))]);
    }
    println!("(expect: a large fixed setup gap, parallel k-slopes)");
}
