//! E3 — Theorem 2.1: distributed GST construction cost and validity.
//!
//! The construction schedule is deterministic, so the cost column is exact;
//! validity is measured by the verifier plus fallback/orphan counters.
//! Paper-predicted shape: rounds ~ D·log^5 n for the sequential schedule
//! (the paper's pipelined variant saves one log factor).

use bench::*;
use broadcast::construction::{ConstructionSchedule, GstConstructionNode};
use broadcast::Params;
use gst::verify_gst;
use radio_sim::graph::Traversal;
use radio_sim::{CollisionMode, NodeId, Simulator};

fn main() {
    header(
        "E3: distributed GST construction (cluster chains)",
        &["(n, D)", "rounds", "violations", "fallbacks"],
    );
    for (clusters, size) in [(3usize, 8usize), (6, 8), (12, 8), (6, 16)] {
        let g = radio_sim::graph::generators::cluster_chain(clusters, size);
        let params = Params::scaled(g.node_count());
        let layering = g.bfs(NodeId::new(0));
        let sched = ConstructionSchedule::new(&params, layering.max_level().max(1));
        let mut total_viol = 0usize;
        let mut total_fb = 0usize;
        for seed in 0..SEEDS {
            let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                GstConstructionNode::new(&params, sched, id.raw(), layering.level(id))
            });
            sim.run(sched.total_rounds() + 1);
            let labels: Vec<_> = sim.nodes().iter().map(|n| n.labels()).collect();
            let tree = gst::Gst::new(
                labels.iter().map(|l| l.level).collect(),
                labels.iter().map(|l| l.rank).collect(),
                labels.iter().map(|l| l.parent).collect(),
            )
            .expect("well-shaped");
            total_viol += verify_gst(&g, &tree, &[NodeId::new(0)]).len();
            total_fb += sim.nodes().iter().filter(|n| n.stats().fallback_used).count();
        }
        row(
            &format!("({}, {})", g.node_count(), layering.max_level()),
            &[
                format!("({}, {})", g.node_count(), layering.max_level()),
                format!("{}", sched.total_rounds()),
                format!("{:.2}/run", total_viol as f64 / SEEDS as f64),
                format!("{:.2}/run", total_fb as f64 / SEEDS as f64),
            ],
        );
    }
}
