//! E13 — Lemma 3.5: fast transmissions never collide where it matters.
//!
//! In-stretch wave receptions must see zero collisions (with a valid GST);
//! bystander fast collisions are permitted by the refined reading of the
//! lemma (see the gst crate docs) and are reported for transparency.

use bench::*;
use broadcast::multi_message::{broadcast_known, KnownRunOpts};
use broadcast::Params;
use radio_sim::graph::generators;
use radio_sim::NodeId;

fn main() {
    header(
        "E13: fast-transmission collision audit (k=8, known topology)",
        &["graph", "in-stretch", "bystander", "slow"],
    );
    let mut rng = radio_sim::rng::stream_rng(5, 0);
    let cases = vec![
        ("grid7x7", generators::grid(7, 7)),
        ("chain6x6", generators::cluster_chain(6, 6)),
        ("gnp64", generators::gnp_connected(64, 0.08, &mut rng)),
        ("udg80", generators::unit_disk(80, 0.2, &mut rng)),
    ];
    for (name, g) in cases {
        let params = Params::scaled(g.node_count());
        let mut in_stretch = 0u64;
        let mut bystander = 0u64;
        let mut slow = 0u64;
        for seed in 0..SEEDS {
            let out = broadcast_known(
                &g,
                NodeId::new(0),
                &payloads(8),
                &params,
                seed,
                KnownRunOpts::new().with_max_rounds(MAX_ROUNDS),
            );
            in_stretch += out.audit.fast_collisions_in_stretch;
            bystander += out.audit.fast_collisions_bystander;
            slow += out.audit.slow_collisions;
        }
        row(
            name,
            &[name.to_string(), format!("{in_stretch}"), format!("{bystander}"), format!("{slow}")],
        );
        assert_eq!(in_stretch, 0, "Lemma 3.5 violated on {name}");
    }
    println!("(expect: in-stretch always 0; slow collisions are normal Decay contention)");
}
