//! # baselines — published comparators
//!
//! The protocols the paper compares against:
//!
//! * **BGI Decay** `O(D log n + log^2 n)` — lives in
//!   [`broadcast::decay::DecayBroadcast`] because the paper's own algorithms
//!   use it as a primitive; re-exported here as [`DecayBroadcast`].
//! * [`cr`] — a *Czumaj–Rytter-style* broadcast with the
//!   `O(D log(n/D) + log^2 n)` shape: Decay with phases truncated to
//!   `⌈log(n/D)⌉ + 1` densities, interleaved with periodic full-length
//!   phases. The exact CR probability sequence is intricate; this variant
//!   preserves the asymptotic shape the experiments compare (see DESIGN.md
//!   §3.3).
//! * [`routing`] — the no-coding multi-message baseline: the paper's own MMV
//!   GST schedule, but forwarding a uniformly random *plaintext* stored
//!   message instead of an RLNC combination (the routing-vs-coding question
//!   of Ghaffari–Haeupler–Khabbazian \[11\]).
//! * [`repeat`] — the trivial `k ×` single-message baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use broadcast::decay::{DecayBroadcast, DecayMsg};

pub mod cr {
    //! Czumaj–Rytter-style truncated Decay.

    use broadcast::Params;
    use radio_sim::model::PacketBits;
    use radio_sim::{Action, Observation, Protocol};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Packet: the broadcast message.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct CrMsg(pub u64);

    impl PacketBits for CrMsg {
        fn packet_bits(&self) -> usize {
            64
        }
    }

    /// The truncated-Decay broadcast of the `O(D log(n/D) + log^2 n)` shape.
    ///
    /// Phases cycle `short, short, …, short, full`: `cycle - 1` phases of
    /// `⌈log2(n/D)⌉ + 1` densities, then one full `⌈log2 n⌉` phase that
    /// handles high-degree frontiers.
    #[derive(Clone, Debug)]
    pub struct CrBroadcast {
        short_len: u32,
        full_len: u32,
        cycle: u32,
        message: Option<CrMsg>,
        informed_at: Option<u64>,
    }

    impl CrBroadcast {
        /// A node of the broadcast for graphs with at most `n` nodes and
        /// diameter about `d`; the source passes `Some(message)`.
        pub fn new(params: &Params, d_bound: u32, message: Option<CrMsg>) -> Self {
            let n_over_d = (1usize << params.log_n).max(2) / (d_bound.max(1) as usize).max(1);
            let short_len = radio_sim::graph::ceil_log2(n_over_d.max(2)) + 1;
            CrBroadcast {
                short_len: short_len.min(params.log_n.max(1)),
                full_len: params.log_n.max(1),
                cycle: 4,
                message,
                informed_at: message.map(|_| 0),
            }
        }

        /// Whether this node holds the message.
        pub fn is_informed(&self) -> bool {
            self.message.is_some()
        }

        /// Round of first reception (0 at the source).
        pub fn informed_at(&self) -> Option<u64> {
            self.informed_at
        }

        /// Transmission probability at global round `r`.
        fn probability(&self, r: u64) -> f64 {
            let cycle_rounds =
                u64::from(self.cycle - 1) * u64::from(self.short_len) + u64::from(self.full_len);
            let in_cycle = r % cycle_rounds;
            let short_block = u64::from(self.cycle - 1) * u64::from(self.short_len);
            let step = if in_cycle < short_block {
                in_cycle % u64::from(self.short_len)
            } else {
                in_cycle - short_block
            };
            0.5f64.powi(step as i32)
        }
    }

    impl Protocol for CrBroadcast {
        type Msg = CrMsg;

        fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<CrMsg> {
            match self.message {
                Some(m) if rng.gen_bool(self.probability(round)) => Action::Transmit(m),
                _ => Action::Listen,
            }
        }

        fn observe(&mut self, round: u64, obs: Observation<CrMsg>, _rng: &mut SmallRng) {
            if let Observation::Message(m) = obs {
                if self.message.is_none() {
                    self.message = Some(*m);
                    self.informed_at = Some(round + 1);
                }
            }
        }
    }
}

pub mod routing {
    //! The no-coding multi-message baseline.

    use broadcast::schedule::{SchedLabels, ScheduleConfig};
    use radio_sim::model::PacketBits;
    use radio_sim::{Action, Observation, Protocol};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A plaintext store-and-forward packet.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct PlainMsg {
        /// Message index in `0..k`.
        pub index: u32,
        /// The payload word.
        pub payload: u64,
        /// Whether this was a fast transmission.
        pub fast: bool,
    }

    impl PacketBits for PlainMsg {
        fn packet_bits(&self) -> usize {
            32 + 64 + 1
        }
    }

    /// The MMV GST schedule forwarding uniformly random *stored plaintext*
    /// messages (no coding): when prompted, a node picks one of the messages
    /// it knows uniformly at random — the classical routing strategy whose
    /// throughput coding beats.
    #[derive(Clone, Debug)]
    pub struct RoutingNode {
        cfg: ScheduleConfig,
        labels: SchedLabels,
        k: usize,
        known: Vec<Option<u64>>,
        known_count: usize,
        last_fast: Option<(u64, PlainMsg)>,
    }

    impl RoutingNode {
        /// A node with schedule `labels` for `k` messages.
        pub fn new(cfg: ScheduleConfig, labels: SchedLabels, k: usize) -> Self {
            RoutingNode { cfg, labels, k, known: vec![None; k], known_count: 0, last_fast: None }
        }

        /// Pre-loads the source's messages.
        pub fn with_messages(mut self, payloads: &[u64]) -> Self {
            for (i, &p) in payloads.iter().enumerate() {
                self.known[i] = Some(p);
            }
            self.known_count = payloads.len();
            self
        }

        /// Whether all `k` messages are known.
        pub fn is_complete(&self) -> bool {
            self.known_count == self.k
        }

        /// Number of known messages.
        pub fn known_count(&self) -> usize {
            self.known_count
        }

        fn store(&mut self, m: &PlainMsg) {
            let slot = &mut self.known[m.index as usize];
            if slot.is_none() {
                *slot = Some(m.payload);
                self.known_count += 1;
            }
        }

        fn random_known(&self, rng: &mut SmallRng, fast: bool) -> Option<PlainMsg> {
            if self.known_count == 0 {
                return None;
            }
            let pick = rng.gen_range(0..self.known_count);
            let (index, payload) = self
                .known
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|p| (i, p)))
                .nth(pick)
                .expect("known_count tracks Some entries");
            Some(PlainMsg { index: index as u32, payload, fast })
        }
    }

    impl Protocol for RoutingNode {
        type Msg = PlainMsg;

        fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action<PlainMsg> {
            if round % 2 == 0 {
                if self.labels.fast_transmitter
                    && self.cfg.fast_slot(round, self.labels.level, self.labels.rank)
                {
                    let msg = if self.labels.stretch_start {
                        self.random_known(rng, true)
                    } else {
                        match &self.last_fast {
                            Some((t, m)) if *t + 2 == round => Some(m.clone()),
                            _ => None,
                        }
                    };
                    if let Some(m) = msg {
                        return Action::Transmit(m);
                    }
                }
                return Action::Listen;
            }
            if let Some(p) = self.cfg.slow_prompt(round, self.labels.vdist) {
                if rng.gen_bool(p) {
                    if let Some(m) = self.random_known(rng, false) {
                        return Action::Transmit(m);
                    }
                }
            }
            Action::Listen
        }

        fn observe(&mut self, round: u64, obs: Observation<PlainMsg>, _rng: &mut SmallRng) {
            if let Observation::Message(m) = obs {
                if m.fast && round % 2 == 0 {
                    self.last_fast = Some((round, (*m).clone()));
                }
                self.store(&m);
            }
        }
    }
}

pub mod repeat {
    //! The trivial `k ×` single-message baseline.

    use broadcast::Params;
    use radio_sim::{Graph, NodeId};

    /// Estimated rounds to broadcast `k` messages by running the
    /// known-topology single-message broadcast `k` times back to back
    /// (each message only starts once the previous one finished).
    ///
    /// Returns `None` if the single-message probe itself fails.
    pub fn rounds_estimate(
        graph: &Graph,
        source: NodeId,
        k: usize,
        params: &Params,
        seed: u64,
    ) -> Option<u64> {
        use broadcast::multi_message::{broadcast_known, KnownRunOpts};
        use rlnc::gf2::BitVec;
        let one = broadcast_known(
            graph,
            source,
            &[BitVec::from_u64(1, 32)],
            params,
            seed,
            KnownRunOpts::new().with_max_rounds(2_000_000),
        );
        one.completion_round.map(|r| r * k as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use broadcast::schedule::{SchedLabels, ScheduleConfig};
    use broadcast::Params;
    use radio_sim::graph::{generators, Traversal};
    use radio_sim::{CollisionMode, NodeId, Simulator};

    #[test]
    fn cr_broadcast_completes() {
        let g = generators::cluster_chain(6, 5);
        let d = g.bfs(NodeId::new(0)).max_level();
        let params = Params::scaled(30);
        let mut sim = Simulator::new(g, CollisionMode::NoDetection, 1, |id| {
            cr::CrBroadcast::new(&params, d, (id.index() == 0).then_some(cr::CrMsg(5)))
        });
        let done = sim.run_until(500_000, |ns| ns.iter().all(cr::CrBroadcast::is_informed));
        assert!(done.is_some());
    }

    #[test]
    fn cr_faster_than_decay_on_long_sparse_graphs() {
        // Where D is large relative to n, truncated phases help.
        let g = generators::path(96);
        let d = g.bfs(NodeId::new(0)).max_level();
        let params = Params::scaled(96);
        let run_cr = |seed| {
            let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                cr::CrBroadcast::new(&params, d, (id.index() == 0).then_some(cr::CrMsg(5)))
            });
            sim.run_until(500_000, |ns| ns.iter().all(cr::CrBroadcast::is_informed)).unwrap()
        };
        let run_decay = |seed| {
            let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, seed, |id| {
                DecayBroadcast::new(&params, (id.index() == 0).then_some(DecayMsg(5)))
            });
            sim.run_until(500_000, |ns| ns.iter().all(DecayBroadcast::is_informed)).unwrap()
        };
        let cr: u64 = (0..5).map(run_cr).sum();
        let decay: u64 = (0..5).map(run_decay).sum();
        assert!(cr < decay, "CR-style ({cr}) not faster than Decay ({decay}) on a path");
    }

    #[test]
    fn routing_completes_but_needs_more_rounds_than_coding() {
        let g = generators::grid(5, 5);
        let params = Params::scaled(25);
        let k = 8;
        let mut rng = radio_sim::rng::stream_rng(9, 0);
        let (tree, _) =
            gst::build_gst(&g, &[NodeId::new(0)], &mut rng, &gst::BuildConfig::for_nodes(25));
        let vd = gst::VirtualDistances::compute(&g, &tree);
        let cfg = ScheduleConfig::from_params(&params);
        let payloads: Vec<u64> = (0..k as u64).collect();
        let mut sim = Simulator::new(g.clone(), CollisionMode::NoDetection, 2, |id| {
            let node = routing::RoutingNode::new(cfg, SchedLabels::from_gst(&tree, &vd, id), k);
            if id.index() == 0 {
                node.with_messages(&payloads)
            } else {
                node
            }
        });
        let routing_done =
            sim.run_until(1_000_000, |ns| ns.iter().all(routing::RoutingNode::is_complete));
        assert!(routing_done.is_some(), "routing never completed");

        let msgs: Vec<rlnc::gf2::BitVec> =
            (0..k as u64).map(|i| rlnc::gf2::BitVec::from_u64(i, 32)).collect();
        let coded = broadcast::multi_message::broadcast_known(
            &g,
            NodeId::new(0),
            &msgs,
            &params,
            2,
            broadcast::multi_message::KnownRunOpts::new(),
        );
        assert!(coded.completion_round.is_some());
        // Coding should not be slower (it is usually strictly faster).
        assert!(
            coded.completion_round.unwrap() <= routing_done.unwrap() * 2,
            "coding unexpectedly slow: {} vs routing {}",
            coded.completion_round.unwrap(),
            routing_done.unwrap()
        );
    }

    #[test]
    fn repeat_estimate_scales_with_k() {
        let g = generators::grid(4, 4);
        let params = Params::scaled(16);
        let one = repeat::rounds_estimate(&g, NodeId::new(0), 1, &params, 3).unwrap();
        let five = repeat::rounds_estimate(&g, NodeId::new(0), 5, &params, 3).unwrap();
        assert_eq!(five, one * 5);
    }
}
