#!/usr/bin/env python3
"""Perf-smoke gate over BENCH_pipeline.json.

Fails CI when the wake-hint fast path silently regresses to dense stepping
(`act_skips == 0` on a pipeline entry), when a pipeline's round count drifts
above its pinned regression budget (mirroring tests/regression_rounds.rs for
the exact bench seeds), or when the idle microbench speedup collapses.

Usage: python3 scripts/check_bench.py [path/to/BENCH_pipeline.json]
"""

import json
import sys

# Round budgets for the bench's fixed seeds; generous versions of the pins in
# tests/regression_rounds.rs (which sweep several seeds).
ROUND_BUDGETS = {
    "e1_corridor_single": 2_200,
    "e2_unit_disk_single": 4_800,
    "multi_telemetry_backhaul": 7_000,
    "multi_firmware_grid": 12_500,
}

# Exact round counts at the bench's fixed seeds. Runs are deterministic, so
# any drift here means the executed round sequence changed — the segment
# scheduler promises bit-identity with per-round stepping (the corridor has
# been exactly 677 since PR 2). An intentional algorithm change must update
# these pins explicitly.
EXPECTED_ROUNDS = {
    "e1_corridor_single": 677,
    "e2_unit_disk_single": 2_146,
    "multi_telemetry_backhaul": 3_308,
    "multi_firmware_grid": 5_011,
}

MIN_MICROBENCH_SPEEDUP = 50.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    failures = []
    seen = set()
    for entry in data["entries"]:
        name = entry["name"]
        seen.add(name)
        if entry["act_skips"] <= 0:
            failures.append(
                f"{name}: act_skips == 0 — the pipeline fell off the "
                "wake-hint fast path (dense stepping)"
            )
        budget = ROUND_BUDGETS.get(name)
        if budget is None:
            failures.append(f"{name}: no pinned round budget for this entry")
        elif entry["rounds"] > budget:
            failures.append(
                f"{name}: {entry['rounds']} rounds exceeds the pinned "
                f"budget {budget}"
            )
        expected = EXPECTED_ROUNDS.get(name)
        if expected is not None and entry["rounds"] != expected:
            failures.append(
                f"{name}: {entry['rounds']} rounds != pinned {expected} — "
                "the executed round sequence changed; update the pin only "
                "for an intentional algorithm change"
            )
        if entry["rounds"] > entry["cap"]:
            failures.append(
                f"{name}: {entry['rounds']} rounds exceeds the worst-case "
                f"cap {entry['cap']}"
            )

    missing = set(ROUND_BUDGETS) - seen
    if missing:
        failures.append(f"missing pipeline entries: {sorted(missing)}")

    micro = data.get("idle_microbench", {})
    speedup = micro.get("speedup", 0.0)
    if speedup < MIN_MICROBENCH_SPEEDUP:
        failures.append(
            f"idle microbench speedup {speedup:.1f}x below the "
            f"{MIN_MICROBENCH_SPEEDUP:.0f}x floor"
        )

    if failures:
        print(f"{path}: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1

    print(
        f"{path}: OK — "
        + ", ".join(
            f"{e['name']}={e['rounds']}r/{e['act_skips']}skips"
            for e in data["entries"]
        )
        + f"; microbench {speedup:.0f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
