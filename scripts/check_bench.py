#!/usr/bin/env python3
"""Perf-smoke gate over BENCH_pipeline.json.

Fails CI when the wake-hint fast path silently regresses to dense stepping
(`act_skips == 0` on a pipeline entry), when a pipeline's round count drifts
above its pinned regression budget (mirroring tests/regression_rounds.rs for
the exact bench seeds), when the idle microbench speedup collapses, or —
since the Scenario-facade migration (schema 2) — when an entry's declarative
scenario descriptor (topology label, workload kind, seed, and, since the
fault layer landed in schema 3, the fault-plan label) or any required field
is missing or drifts from the pinned declaration. Schema 3 also requires the
fault counters (`erased`/`jammed`/`churn_events`) on every entry and pins a
lossy `multi_unknown` run whose erasure must actually have fired. Schema 4
(the recovery layer) adds the recovery counters
(`retries`/`votes_overturned`/`fallback_rounds`) to every entry, pins a
degraded-corridor run under heavy erasure, requires every faulted entry to
show fault *or* recovery activity, and requires the degraded corridor
specifically to have exercised the recovery machinery — a faulted bench
whose recovery layer never fires is the fault-blindness bug this schema
exists to catch. Schema 5 (the staged recovery ladder) adds the
`ring_repairs`/`regional_repairs` rung counters to every entry, a
degraded-mobility grid entry, a 60x-Decay budget on the degraded corridor
(down from the recovery PR's 250x headline — the ladder repairs the failed
ring locally instead of flooding globally), and requires at least one
degraded entry to have fired a rung-1 ring repair. Schema 6 (streamed
topologies) adds the memory-accounting columns
(`streamed`/`peak_state_bytes`/`materialized_topology_bytes`) to every
entry, a million-node streamed unit-disk pipeline run with a pinned
wall-clock budget, and gates every streamed entry on `peak_state_bytes`
staying below a quarter of the materialized CSR cost — a streamed run
that silently materialized its topology would blow that ratio. Schema 7
(the sharded sweep service) adds the `sweep` section: the E1 corridor
swept over 64 seeds serially and on the work-stealing pool, gated on the
shard-merged matrix being bit-identical to the serial one (the measurement
re-proves the executor's contract), on the deterministic best/worst round
pins, and — only when the runner actually has more than one worker — on a
parallel speedup materializing.

Usage: python3 scripts/check_bench.py [path/to/BENCH_pipeline.json]
"""

import json
import sys

EXPECTED_SCHEMA = 7

# Every field each pipeline entry must carry (schema 6).
REQUIRED_ENTRY_FIELDS = (
    "name",
    "scenario",
    "rounds",
    "cap",
    "wall_ms",
    "transmissions",
    "deliveries",
    "observe_skips",
    "act_skips",
    "idle_fastforward",
    "erased",
    "jammed",
    "churn_events",
    "retries",
    "votes_overturned",
    "ring_repairs",
    "regional_repairs",
    "fallback_rounds",
    "streamed",
    "peak_state_bytes",
    "materialized_topology_bytes",
)
REQUIRED_SCENARIO_FIELDS = ("topology", "workload", "seed", "faults")

# The declarative scenario each entry must have run — the bench declares its
# runs through the Scenario facade, and these descriptors pin the declaration
# itself (a silently swapped topology or seed would otherwise still pass the
# round pins by luck).
EXPECTED_SCENARIOS = {
    "e1_corridor_single": {
        "topology": "cluster_chain(20x6)",
        "workload": "single",
        "seed": 1,
        "faults": "none",
    },
    "e2_unit_disk_single": {
        "topology": "unit_disk(80,r=0.18,g=2024)",
        "workload": "single",
        "seed": 1,
        "faults": "none",
    },
    "multi_telemetry_backhaul": {
        "topology": "cluster_chain(6x6)",
        "workload": "multi_unknown",
        "seed": 11,
        "faults": "none",
    },
    "multi_firmware_grid": {
        "topology": "grid(6x6)",
        "workload": "multi_unknown",
        "seed": 3,
        "faults": "none",
    },
    "multi_lossy_telemetry": {
        "topology": "cluster_chain(6x6)",
        "workload": "multi_unknown",
        "seed": 11,
        "faults": "erase(0.05)",
    },
    "e1_degraded_corridor": {
        "topology": "cluster_chain(20x6)",
        "workload": "single",
        "seed": 1,
        "faults": "erase(0.2)",
    },
    "e3_degraded_mobile_grid": {
        "topology": "grid(6x6)",
        "workload": "single",
        "seed": 1,
        "faults": "mobile(r0.35,e32)",
    },
    "m1_million_disk_single": {
        "topology": "stream:unit_disk(1000000,r=0.012,g=2026)",
        "workload": "single",
        "seed": 1,
        "faults": "none",
    },
}

# Entries that must have streamed their topology (scenario declared a
# `stream:` spec and the bench must not have materialized it behind the
# declaration's back).
MUST_STREAM = ("m1_million_disk_single",)

# A streamed entry's peak resident bytes (topology term + node state) must
# stay below this fraction of the full materialized cost — the CSR the spec
# would build plus the identical node state. A streamed run that silently
# materialized its topology lands far above it (the million-node entry
# would report ~58% instead of ~22%).
MAX_STREAMED_PEAK_RATIO = 0.25

# Wall-clock ceilings (ms) for entries whose runtime is itself the headline:
# generous multiples of the measured local wall to absorb CI-runner jitter,
# but tight enough that an accidental O(n·m) regression (or a fallen-off
# fast path) in the million-node run fails loudly instead of stalling CI.
WALL_BUDGETS_MS = {
    # Measured ~2,600s uncontended on the 1-core reference box (44,940
    # rounds, ~40G act skips + 90M transmissions at mean degree ~452).
    "m1_million_disk_single": 5_400_000.0,
}

# Faulted entries that must show nonzero *recovery-counter* activity
# (retries, a ladder rung, or fallback rounds): scenarios harsh enough that
# a clean-looking run means the recovery layer silently failed to engage.
# Lightly faulted entries (e.g. 5% erasure) may legitimately recover through
# voting and fec-rate adaptation alone, and mobility re-samples the topology
# without corrupting the channel (windows stretch but rarely fail), so
# neither class is required to trip these counters.
MUST_EXERCISE_RECOVERY = ("e1_degraded_corridor",)

# Round budgets for the bench's fixed seeds; generous versions of the pins in
# tests/regression_rounds.rs (which sweep several seeds).
ROUND_BUDGETS = {
    "e1_corridor_single": 2_200,
    "e2_unit_disk_single": 4_800,
    "multi_telemetry_backhaul": 7_000,
    "multi_firmware_grid": 12_500,
    "multi_lossy_telemetry": 7_000,
    # 60x the paired Decay run (199 rounds at this seed/plan) — the staged
    # ladder's headline: the recovery PR's retry-then-flood scheme needed a
    # 250x allowance here.
    "e1_degraded_corridor": 11_940,
    "e3_degraded_mobile_grid": 4_000,
    "m1_million_disk_single": 60_000,
}

# Exact round counts at the bench's fixed seeds. Runs are deterministic, so
# any drift here means the executed round sequence changed — the segment
# scheduler and the Scenario facade both promise bit-identity with the
# per-round legacy entry points (the corridor has been exactly 677 since
# PR 2). An intentional algorithm change must update these pins explicitly.
EXPECTED_ROUNDS = {
    "e1_corridor_single": 677,
    "e2_unit_disk_single": 2_146,
    "multi_telemetry_backhaul": 3_308,
    "multi_firmware_grid": 5_011,
    # Down from 3366: the measured-erasure fec-repair adaptation and the
    # erasure-asymmetry voting shortcut landed together (recovery PR).
    # Unchanged by the schema-5 windowed estimator: the erasure rate here is
    # steady, so the sliding window sees what the cumulative totals saw.
    "multi_lossy_telemetry": 3_267,
    # The staged ladder replaced the deep retry backoff (3 retries at
    # doubled budgets, then a global flood) with one retry plus ring-local
    # and regional repair rungs.
    "e1_degraded_corridor": 6_183,
    "e3_degraded_mobile_grid": 1_955,
    # The million-node streamed disk: deterministic like every other entry;
    # drift means the streamed neighborhood order (or the pipeline itself)
    # changed.
    "m1_million_disk_single": 44_940,
}

MIN_MICROBENCH_SPEEDUP = 50.0

# The schema-7 sweep section: required fields and deterministic pins. The
# corridor sweep over seeds 0..64 is seed-deterministic, so its best/worst
# completion rounds are exact pins like EXPECTED_ROUNDS; wall clocks are
# machine-dependent and only sanity-bounded.
REQUIRED_SWEEP_FIELDS = (
    "name",
    "topology",
    "workload",
    "seeds",
    "workers",
    "serial_wall_ms",
    "parallel_wall_ms",
    "speedup",
    "merged_matches_serial",
    "best_rounds",
    "worst_rounds",
)
EXPECTED_SWEEP = {
    "name": "sweep_corridor_single",
    "topology": "cluster_chain(20x6)",
    "workload": "single",
    "seeds": 64,
    "best_rounds": 582,
    "worst_rounds": 1168,
}
# Generous ceiling for the serial corridor sweep (~127 ms on the 1-core
# reference box): a blown budget means the facade's prepare-once path
# regressed to per-seed topology rebuilds (or worse).
MAX_SWEEP_SERIAL_WALL_MS = 30_000.0


def check_sweep(data, failures):
    """The schema-7 parallel-sweep gates."""
    sweep = data.get("sweep")
    if sweep is None:
        failures.append("missing the schema-7 'sweep' section")
        return
    missing = [f for f in REQUIRED_SWEEP_FIELDS if f not in sweep]
    if missing:
        failures.append(f"sweep: missing required fields {missing}")
        return
    for field, want in EXPECTED_SWEEP.items():
        got = sweep[field]
        if got != want:
            failures.append(
                f"sweep: {field} = {got!r} != pinned {want!r} — the declared "
                "sweep (or its deterministic outcome) changed"
            )
    if sweep["merged_matches_serial"] is not True:
        failures.append(
            "sweep: merged_matches_serial is not true — the work-stealing "
            "executor's shard-merged matrix diverged from the serial sweep"
        )
    if sweep["workers"] < 1:
        failures.append(f"sweep: nonsensical worker count {sweep['workers']}")
    # The speedup gate only binds when the pool actually had parallelism to
    # spend: on a one-core runner serial and parallel take the same path.
    if sweep["workers"] > 1 and sweep["speedup"] <= 1.0:
        failures.append(
            f"sweep: {sweep['workers']} workers yielded speedup "
            f"{sweep['speedup']:.2f}x <= 1x — the pool adds threads without "
            "adding throughput"
        )
    if sweep["serial_wall_ms"] > MAX_SWEEP_SERIAL_WALL_MS:
        failures.append(
            f"sweep: serial_wall_ms {sweep['serial_wall_ms']:.0f} exceeds "
            f"{MAX_SWEEP_SERIAL_WALL_MS:.0f} — the serial sweep path regressed"
        )


def check_entry(entry, failures):
    name = entry.get("name", "<unnamed>")
    missing = [f for f in REQUIRED_ENTRY_FIELDS if f not in entry]
    if missing:
        failures.append(f"{name}: missing required fields {missing}")
        return
    scenario = entry["scenario"]
    missing = [f for f in REQUIRED_SCENARIO_FIELDS if f not in scenario]
    if missing:
        failures.append(f"{name}: scenario descriptor missing fields {missing}")
        return
    expected_scenario = EXPECTED_SCENARIOS.get(name)
    if expected_scenario is None:
        failures.append(f"{name}: no pinned scenario declaration for this entry")
    else:
        for field, want in expected_scenario.items():
            got = scenario[field]
            if got != want:
                failures.append(
                    f"{name}: scenario.{field} = {got!r} != pinned {want!r} — "
                    "the bench's declared scenario changed"
                )
    if entry["act_skips"] <= 0:
        failures.append(
            f"{name}: act_skips == 0 — the pipeline fell off the "
            "wake-hint fast path (dense stepping)"
        )
    budget = ROUND_BUDGETS.get(name)
    if budget is None:
        failures.append(f"{name}: no pinned round budget for this entry")
    elif entry["rounds"] > budget:
        failures.append(
            f"{name}: {entry['rounds']} rounds exceeds the pinned "
            f"budget {budget}"
        )
    expected = EXPECTED_ROUNDS.get(name)
    if expected is not None and entry["rounds"] != expected:
        failures.append(
            f"{name}: {entry['rounds']} rounds != pinned {expected} — "
            "the executed round sequence changed; update the pin only "
            "for an intentional algorithm change"
        )
    if entry["rounds"] > entry["cap"]:
        failures.append(
            f"{name}: {entry['rounds']} rounds exceeds the worst-case "
            f"cap {entry['cap']}"
        )
    faults = scenario.get("faults", "none")
    fault_activity = entry["erased"] + entry["jammed"] + entry["churn_events"]
    recovery_activity = (
        entry["retries"]
        + entry["votes_overturned"]
        + entry["ring_repairs"]
        + entry["regional_repairs"]
        + entry["fallback_rounds"]
    )
    if "erase(" in faults and entry["erased"] <= 0:
        failures.append(
            f"{name}: declares erasure ({faults}) but erased == 0 — "
            "the fault layer never fired"
        )
    if faults != "none" and fault_activity + recovery_activity == 0:
        failures.append(
            f"{name}: faulted entry ({faults}) reports zero fault and "
            "recovery activity — the run was effectively fault-free"
        )
    if name in MUST_EXERCISE_RECOVERY and (
        entry["retries"]
        + entry["ring_repairs"]
        + entry["regional_repairs"]
        + entry["fallback_rounds"]
        == 0
    ):
        failures.append(
            f"{name}: degraded entry never exercised the recovery "
            "machinery (no retries, ladder rungs or fallback rounds) — "
            "the pipeline is fault-blind again"
        )
    if (
        entry["fallback_rounds"] > 0
        and entry["ring_repairs"] + entry["regional_repairs"] == 0
    ):
        failures.append(
            f"{name}: fallback fired without any ladder rung — rung order "
            "must be monotone (ring-local, then regional, then global)"
        )
    if faults == "none" and fault_activity + recovery_activity:
        failures.append(
            f"{name}: fault-free entry reports nonzero fault or "
            "recovery counters"
        )
    check_memory(entry, name, scenario, failures)


def check_memory(entry, name, scenario, failures):
    """The schema-6 memory columns: streamed declarations must match the
    scenario, peak accounting must be present, and streamed entries must
    stay lean."""
    streamed = entry["streamed"]
    declared_streamed = scenario["topology"].startswith("stream:")
    if streamed != declared_streamed:
        failures.append(
            f"{name}: streamed = {streamed} but the declared topology is "
            f"{scenario['topology']!r} — the bench ran a different kind of "
            "topology than it declared"
        )
    if name in MUST_STREAM and not streamed:
        failures.append(f"{name}: entry is required to stream its topology")
    peak = entry["peak_state_bytes"]
    csr = entry["materialized_topology_bytes"]
    if peak <= 0 or csr <= 0:
        failures.append(f"{name}: memory accounting missing (peak {peak}, csr {csr})")
        return
    if streamed:
        ratio = peak / (csr + peak)
        if ratio > MAX_STREAMED_PEAK_RATIO:
            failures.append(
                f"{name}: peak_state_bytes {peak} is {ratio:.0%} of the "
                f"materialized cost ({csr} CSR + identical state) — above "
                f"the {MAX_STREAMED_PEAK_RATIO:.0%} ceiling; the streamed "
                "topology was likely silently materialized"
            )
    wall_budget = WALL_BUDGETS_MS.get(name)
    if wall_budget is not None and entry["wall_ms"] > wall_budget:
        failures.append(
            f"{name}: wall_ms {entry['wall_ms']:.0f} exceeds the pinned "
            f"budget {wall_budget:.0f} — the flagship run regressed"
        )


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    failures = []
    schema = data.get("schema")
    if schema != EXPECTED_SCHEMA:
        failures.append(f"schema {schema} != expected {EXPECTED_SCHEMA}")

    seen = set()
    for entry in data.get("entries", []):
        seen.add(entry.get("name"))
        check_entry(entry, failures)

    missing = set(ROUND_BUDGETS) - seen
    if missing:
        failures.append(f"missing pipeline entries: {sorted(missing)}")

    # The ladder's whole point is repairing locally before escalating: at
    # least one degraded entry must have fired a rung-1 ring repair, or the
    # staged ladder has silently degenerated back to flood-only recovery.
    degraded = [
        e
        for e in data.get("entries", [])
        if e.get("scenario", {}).get("faults", "none") != "none"
    ]
    if degraded and not any(e.get("ring_repairs", 0) > 0 for e in degraded):
        failures.append(
            "no degraded entry fired a ring-local repair (ring_repairs == 0 "
            "everywhere) — the recovery ladder's first rung never engages"
        )

    micro = data.get("idle_microbench", {})
    speedup = micro.get("speedup", 0.0)
    if speedup < MIN_MICROBENCH_SPEEDUP:
        failures.append(
            f"idle microbench speedup {speedup:.1f}x below the "
            f"{MIN_MICROBENCH_SPEEDUP:.0f}x floor"
        )

    check_sweep(data, failures)

    if failures:
        print(f"{path}: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1

    sweep = data["sweep"]
    print(
        f"{path}: OK — "
        + ", ".join(
            f"{e['name']}={e['rounds']}r/{e['act_skips']}skips"
            for e in data["entries"]
        )
        + f"; microbench {speedup:.0f}x"
        + f"; sweep {sweep['speedup']:.2f}x on {sweep['workers']} worker(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
