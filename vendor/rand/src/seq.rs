//! Sequence-related helpers.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            // Multiply-shift reduction, matching crate::SampleRange.
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*xs.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(6);
        let xs: [u8; 0] = [];
        assert!(xs.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
