//! # rand (vendored stand-in)
//!
//! The build environment for this workspace is fully offline, so this crate
//! provides a minimal, deterministic, API-compatible implementation of the
//! subset of [`rand` 0.8](https://docs.rs/rand/0.8) that the workspace
//! actually uses:
//!
//! * [`RngCore`] / [`Rng`] — `next_u64`, `gen`, `gen_bool`, `gen_range`;
//! * [`SeedableRng`] — `from_seed` and `seed_from_u64`;
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm real
//!   `rand 0.8` uses for `SmallRng` on 64-bit platforms;
//! * [`seq::SliceRandom`] — `choose` and `shuffle`;
//! * [`distributions`] — the [`distributions::Standard`] distribution for
//!   `gen()`.
//!
//! Determinism is the only hard requirement the simulator places on this
//! crate: a `SmallRng` seeded with `seed_from_u64(s)` must produce the same
//! stream on every platform and every run. Statistical quality matters only
//! to simulation fidelity; xoshiro256++ is more than adequate. Integer
//! `gen_range` uses straightforward rejection-free reduction (multiply-shift),
//! which has negligible bias for the range sizes simulations use.
//!
//! If the real `rand` crate ever becomes available to the build, deleting
//! `vendor/rand` and pointing the workspace dependency at the registry is the
//! only change required.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 random mantissa bits, exactly the precision of an f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full-entropy byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanded with SplitMix64 exactly
    /// as `rand_core` 0.6 does, so seeds mean the same thing they would with
    /// the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 output function (const from the reference code).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can produce a uniform sample; implemented for `Range<T>` over
/// the primitive numeric types.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction of a 64-bit draw onto [0, span).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $ty * (1.0 / (1u64 << 53) as $ty);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let a: u64 = SmallRng::seed_from_u64(7).gen();
        let b: u64 = SmallRng::seed_from_u64(7).gen();
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
