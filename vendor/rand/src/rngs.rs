//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator: **xoshiro256++**, the same
/// algorithm real `rand 0.8` uses for `SmallRng` on 64-bit platforms.
///
/// Not cryptographically secure — exactly like the real `SmallRng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's one forbidden state; SplitMix64-expanded seeds never hit
        // it, but an explicit from_seed([0; 32]) could.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xD6E8_FEB8_6659_FD93,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_seed_is_rescued() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
