//! Distributions usable with [`crate::Rng::gen`].

use crate::Rng;

/// A type that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over all values for integers, uniform
/// in `[0, 1)` for floats, fair-coin for `bool`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Standard;

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
