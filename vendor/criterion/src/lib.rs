//! # criterion (vendored stand-in)
//!
//! The build environment is offline, so this crate implements the subset of
//! [`criterion`](https://docs.rs/criterion) that `benches/micro.rs` uses:
//! [`Criterion`] with the builder knobs (`sample_size`, `warm_up_time`,
//! `measurement_time`), [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified, but honest): each `bench_function` first warms up
//! for the configured wall-clock budget while calibrating how many iterations
//! fit in one sample, then takes `sample_size` timed samples and reports the
//! mean, min, and max time per iteration. There are no plots, no outlier
//! analysis, and no saved baselines — swap the workspace dependency back to
//! the registry crate to regain those.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: holds timing configuration and runs named benches.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run repeatedly, learning the per-iteration cost.
        let warm_start = Instant::now();
        let mut iter_time = Duration::from_nanos(50);
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            if b.iters > 0 && !b.elapsed.is_zero() {
                iter_time = b.elapsed / b.iters as u32;
            }
            if iter_time.is_zero() {
                iter_time = Duration::from_nanos(1);
            }
        }

        // Measurement: sample_size samples, each sized to fill its share of
        // the measurement budget.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / iter_time.as_nanos().max(1)).clamp(1, u128::from(u32::MAX));
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample as u64, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed / iters_per_sample as u32);
        }

        let total: Duration = per_iter.iter().sum();
        let mean = total / per_iter.len() as u32;
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let max = per_iter.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples × {} iters)",
            Nanos(min),
            Nanos(mean),
            Nanos(max),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

/// Human-scaled duration formatting (ns/µs/ms/s), like criterion's reports.
struct Nanos(Duration);

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2} s", ns as f64 / 1e9)
        }
    }
}

/// Passed to the closure given to [`Criterion::bench_function`]; times the
/// routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many iterations as this sample asks.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name (both the plain and `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = tiny
    }

    #[test]
    fn group_runs() {
        quick();
    }
}
