//! Value-generation strategies.
//!
//! Only range strategies are provided; they are the only kind the workspace
//! uses. A strategy is sampled directly (no intermediate value tree, because
//! there is no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one input for a test case.
    fn sample_value(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn sample_value(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}
