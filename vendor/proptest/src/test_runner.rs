//! Test-case configuration and bookkeeping.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// The real crate's default case count.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic RNG for one test case. Seeded from the test
/// name (FNV-1a) and the case index, so every property walks its own
/// reproducible input sequence.
pub fn case_rng(test_name: &str, case: u64) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Prints the failing case's inputs if dropped while panicking, standing in
/// for the real crate's failure persistence (there is no shrinking here).
#[derive(Debug)]
pub struct CaseGuard {
    description: Option<String>,
}

impl CaseGuard {
    /// Arms the guard with a description of the current case.
    pub fn new(description: String) -> Self {
        CaseGuard { description: Some(description) }
    }

    /// Disarms the guard; the case passed.
    pub fn defuse(mut self) {
        self.description = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(desc) = self.description.take() {
            if std::thread::panicking() {
                eprintln!("{desc}");
            }
        }
    }
}
