//! # proptest (vendored stand-in)
//!
//! The build environment is offline, so this crate implements the small
//! subset of [`proptest`](https://docs.rs/proptest) the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * range strategies (`8usize..60`, `0.05f64..0.3`, …);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via a drop guard
//!   that fires while panicking) but is not minimized;
//! * **deterministic cases** — inputs are derived from the test function's
//!   name and the case index, so failures reproduce exactly across runs
//!   rather than using OS entropy (strictly better for CI triage);
//! * only range strategies are provided, because those are the only
//!   strategies in use.
//!
//! If the real `proptest` becomes available, deleting `vendor/proptest` and
//! repointing the workspace dependency restores shrinking with no test
//! changes.

pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs once per case with inputs sampled from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::case_rng(stringify!($name), u64::from(case));
                    $(let $arg = $crate::strategy::Strategy::sample_value(
                        &($strat), &mut runner_rng);)+
                    let guard = $crate::test_runner::CaseGuard::new(format!(
                        concat!("proptest case {} of {}: ",
                                $(stringify!($arg), " = {:?}, ",)+ "(no shrinking)"),
                        case, stringify!($name), $(&$arg,)+
                    ));
                    $body
                    guard.defuse();
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 8usize..60, p in 0.05f64..0.3, seed in 0u64..1000) {
            prop_assert!((8..60).contains(&n));
            prop_assert!((0.05..0.3).contains(&p));
            prop_assert!(seed < 1000);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert_ne!(x, 10);
            prop_assert_eq!(x.min(9), x);
        }
    }

    #[test]
    fn cases_vary_across_indices() {
        let a = crate::test_runner::case_rng("t", 0);
        let b = crate::test_runner::case_rng("t", 1);
        let va = Strategy::sample_value(&(0u64..1_000_000), &mut { a });
        let vb = Strategy::sample_value(&(0u64..1_000_000), &mut { b });
        assert_ne!(va, vb);
    }
}
