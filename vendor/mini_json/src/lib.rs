//! # mini_json (vendored, hand-rolled)
//!
//! The build environment is offline, so the sweep service's line-oriented
//! wire protocol cannot use `serde`/`serde_json` from the registry. This
//! crate is a minimal, dependency-free JSON implementation of exactly the
//! surface the workspace needs:
//!
//! * a [`Json`] value tree whose objects preserve **insertion order** (a
//!   `Vec` of pairs, not a map), so encoded responses are deterministic and
//!   byte-stable across runs;
//! * a recursive-descent [`Json::parse`] with full string-escape handling
//!   (including `\uXXXX` surrogate pairs) and a typed [`ParseError`]
//!   carrying the byte offset — the service turns it into a structured
//!   `malformed_json` response without dying;
//! * integers kept exact: `Json::Int(i64)` is used for any integral literal
//!   that fits, `Json::Num(f64)` otherwise, so 64-bit seeds and round
//!   counts survive a round trip (an `f64`-only tree silently corrupts
//!   anything above 2^53);
//! * a compact serializer ([`std::fmt::Display`]) emitting one-line JSON,
//!   which is what a line-oriented protocol wants.
//!
//! Deliberately unsupported, because the protocol never produces them:
//! non-string object keys, NaN/Inf (rejected on encode via lossless `{}`
//! formatting of finite floats; never parsed since JSON has no literal for
//! them), and duplicate-key detection (last write wins on [`Json::get`]
//! lookups is *not* implemented — first match wins, matching the serializer
//! which never emits duplicates).

use std::fmt;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number that fits `i64` (seeds, ids, round counts).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses one JSON value from `input`, requiring the whole string to be
    /// consumed (trailing whitespace allowed) — the right contract for a
    /// line-oriented protocol where each line is exactly one value.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Builds an object from ordered pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (first match). `None` for missing keys
    /// and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        // Seeds and counters are u64 end to end; values beyond i64::MAX
        // would silently wrap through the Int variant, so fall back to the
        // (lossy above 2^53) float representation only for that tail and
        // keep everything realistic exact.
        i64::try_from(u).map_or(Json::Num(u as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is lossless-shortest; integral floats get
                    // a ".0" suffix so they re-parse as Num, not Int.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no literal for NaN/Inf; encode as null rather
                    // than emit an unparseable document.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate escape
                                // must follow to form one scalar value.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                            // hex4 leaves pos just past the 4 digits; the
                            // shared `pos += 1` below is for single-char
                            // escapes, so compensate here.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid; copy its bytes through).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { message: "invalid number".to_string(), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn big_u64_seeds_survive() {
        let seed = u64::MAX / 2; // fits i64
        let line = format!("{{\"seed\":{seed}}}");
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(v.to_string(), line);
    }

    #[test]
    fn objects_preserve_order_and_roundtrip() {
        let line = "{\"type\":\"submit_sweep\",\"id\":3,\"seeds\":[0,1,2]}";
        let v = Json::parse(line).unwrap();
        assert_eq!(v.to_string(), line);
        assert_eq!(v.get("type").unwrap().as_str(), Some("submit_sweep"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("seeds").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{0007}f".into());
        let encoded = v.to_string();
        assert_eq!(encoded, "\"a\\\"b\\\\c\\nd\\te\\u0007f\"");
        assert_eq!(Json::parse(&encoded).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("\u{1F600}".into()));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate must fail");
    }

    #[test]
    fn raw_utf8_passes_through() {
        let line = "{\"label\":\"Erdős–Rényi\"}";
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("Erdős–Rényi"));
        assert_eq!(v.to_string(), line);
    }

    #[test]
    fn malformed_inputs_report_offsets() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{]"] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len(), "offset out of range for {bad:?}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn nested_structures_parse() {
        let line = "{\"a\":[{\"b\":[1,2.0,null]},true],\"c\":{}}";
        let v = Json::parse(line).unwrap();
        assert_eq!(v.to_string(), line);
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let v = Json::Num(3.0);
        assert_eq!(v.to_string(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse("  { \"a\" : [ 1 , 2 ] }  ").unwrap();
        assert_eq!(v.to_string(), "{\"a\":[1,2]}");
    }
}
